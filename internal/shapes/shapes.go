// Package shapes implements typed object shapes: interned
// property-layout descriptors arranged in a transition tree (hidden
// classes in the V8/SpiderMonkey sense, extended with per-slot value
// kinds following "Extending Basic Block Versioning with Typed Object
// Shapes"). Every runtime object points at its current shape; writing
// a property either leaves the shape alone (same name, same kind),
// retypes a slot (same name, new kind), or appends a slot (new —
// possibly undeclared — property). Shapes are interned by layout, not
// by class: two classes whose flattened properties have identical
// names, order, and kinds share shape nodes, which is exactly what
// lets a shape guard succeed where a class guard is polymorphic.
//
// Concurrency: shape nodes are immutable after creation (slots and the
// name index never change), so the hot paths — slot lookup, kind
// check, cached-edge traversal — are lock-free. Creating a new
// transition takes the tree mutex and republishes the source node's
// edge map copy-on-write. IDs are dense, assigned in first-creation
// order, and therefore deterministic for deterministic programs; they
// are process-local and must never be persisted (profile snapshots
// exclude them).
package shapes

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Slot describes one property slot: its name and the value kind last
// recorded for it on this shape.
type Slot struct {
	Name string
	Kind types.Kind
}

// edgeKey keys a transition out of a shape. If Name is already a slot
// of the source shape the edge is a retype (same layout, that slot's
// kind becomes Kind); otherwise it is an append (a new slot at the end
// of the layout).
type edgeKey struct {
	Name string
	Kind types.Kind
}

// Shape is one interned layout node. ID 0 is never assigned (it is
// the "no shape" sentinel in compiled guards).
type Shape struct {
	ID    uint32
	Slots []Slot // immutable

	tree   *Tree
	byName map[string]int // immutable name -> slot index

	// edges caches outgoing transitions, republished copy-on-write
	// under tree.mu and read lock-free on every shape-changing write.
	edges atomic.Pointer[map[edgeKey]*Shape]
}

// NumSlots returns the layout width.
func (s *Shape) NumSlots() int { return len(s.Slots) }

// Lookup resolves a property name to its slot index. Lock-free.
func (s *Shape) Lookup(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// SlotKind returns the recorded kind of slot i.
func (s *Shape) SlotKind(i int) types.Kind { return s.Slots[i].Kind }

// Transition returns the shape reached by writing a value of kind k
// to property name: s itself when the slot already has that kind, the
// retyped sibling when the slot exists with a different kind, or the
// appended child when the name is new. The result is interned: two
// transition paths ending in the same layout yield the same node, so
// kind ping-pong (int/dbl alternation on one slot) bounces between two
// shapes instead of growing the tree.
func (s *Shape) Transition(name string, k types.Kind) *Shape {
	if i, ok := s.byName[name]; ok && s.Slots[i].Kind == k {
		return s
	}
	if e := s.edges.Load(); e != nil {
		if t, ok := (*e)[edgeKey{name, k}]; ok {
			return t
		}
	}
	return s.tree.transitionSlow(s, name, k)
}

// Tree is one process-wide shape universe (one per linked class
// table; worker environments share it).
type Tree struct {
	mu     sync.Mutex
	nextID uint32
	// interned maps a layout signature to its unique node.
	interned map[string]*Shape
	// byID indexes shapes by ID-1 (IDs are dense from 1); the compiler
	// resolves profiled shape IDs back to layouts through it.
	byID  []*Shape
	roots []*Shape
}

// NewTree creates an empty shape universe.
func NewTree() *Tree {
	return &Tree{nextID: 1, interned: map[string]*Shape{}}
}

// Count returns the number of interned shapes.
func (t *Tree) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.interned)
}

// Roots returns the root shapes in creation order (diagnostics,
// determinism tests).
func (t *Tree) Roots() []*Shape {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Shape(nil), t.roots...)
}

// Root interns the root shape for a declared property layout (names
// in slot order with their default-value kinds). Classes with
// identical flattened layouts receive the same root.
func (t *Tree) Root(slots []Slot) *Shape {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.internLocked(slots)
	t.roots = append(t.roots, s)
	return s
}

// transitionSlow interns the layout produced by applying (name, k) to
// src and caches the edge. Taken once per distinct transition; every
// later write follows the lock-free edge cache.
func (t *Tree) transitionSlow(src *Shape, name string, k types.Kind) *Shape {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Another writer may have published the edge while we waited.
	if e := src.edges.Load(); e != nil {
		if s, ok := (*e)[edgeKey{name, k}]; ok {
			return s
		}
	}
	var slots []Slot
	if i, ok := src.byName[name]; ok {
		slots = append(slots, src.Slots...)
		slots[i].Kind = k
	} else {
		slots = make([]Slot, 0, len(src.Slots)+1)
		slots = append(slots, src.Slots...)
		slots = append(slots, Slot{Name: name, Kind: k})
	}
	dst := t.internLocked(slots)
	// Republish the edge map copy-on-write.
	var next map[edgeKey]*Shape
	if e := src.edges.Load(); e != nil {
		next = make(map[edgeKey]*Shape, len(*e)+1)
		for ek, s := range *e {
			next[ek] = s
		}
	} else {
		next = make(map[edgeKey]*Shape, 1)
	}
	next[edgeKey{name, k}] = dst
	src.edges.Store(&next)
	return dst
}

func (t *Tree) internLocked(slots []Slot) *Shape {
	sig := signature(slots)
	if s, ok := t.interned[sig]; ok {
		return s
	}
	s := &Shape{
		ID:     t.nextID,
		Slots:  append([]Slot(nil), slots...),
		tree:   t,
		byName: make(map[string]int, len(slots)),
	}
	t.nextID++
	for i, sl := range s.Slots {
		s.byName[sl.Name] = i
	}
	t.interned[sig] = s
	t.byID = append(t.byID, s)
	return s
}

// ByID resolves a shape ID minted by this tree; nil for 0 or unknown
// IDs.
func (t *Tree) ByID(id uint32) *Shape {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id == 0 || int(id) > len(t.byID) {
		return nil
	}
	return t.byID[id-1]
}

// signature serializes a layout for interning. Order matters — a
// layout is the slot sequence, so {a,b} and {b,a} are distinct shapes.
func signature(slots []Slot) string {
	var sb strings.Builder
	for _, sl := range slots {
		sb.WriteString(sl.Name)
		sb.WriteByte(':')
		sb.WriteString(strconv.Itoa(int(sl.Kind)))
		sb.WriteByte(';')
	}
	return sb.String()
}

// Dump returns a deterministic description of every interned shape
// (sorted by ID) — the determinism tests compare two trees with it.
func (t *Tree) Dump() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.interned))
	shapes := make([]*Shape, 0, len(t.interned))
	for _, s := range t.interned {
		shapes = append(shapes, s)
	}
	sort.Slice(shapes, func(i, j int) bool { return shapes[i].ID < shapes[j].ID })
	for _, s := range shapes {
		out = append(out, strconv.Itoa(int(s.ID))+" "+signature(s.Slots))
	}
	return out
}
