package machine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/hhbc"
	"repro/internal/interp"
	"repro/internal/mcode"
	"repro/internal/profile"
	"repro/internal/runtime"
	"repro/internal/types"
	"repro/internal/vasm"
)

// OutcomeKind classifies how a translation finished.
type OutcomeKind int

const (
	// Returned: the guest function returned Value.
	Returned OutcomeKind = iota
	// SideExit: resume interpretation at BCOff (frame stack synced).
	SideExit
	// BindRequest: control wants to continue at bytecode BCOff —
	// the dispatcher may enter another translation or bind a new one.
	BindRequest
	// Threw: a guest error escaped; frame state synced at BCOff.
	Threw
	// Faulted: the translation itself failed — a panic inside JITed
	// code or an internal machine error, never a guest-level error.
	// Err is a *TransFault; BCOff is the pc the faulting translation
	// was entered at, where the VM re-executes in the interpreter.
	Faulted
)

// TransFault is the typed error produced when a translation panics or
// hits an internal machine error. The fault-containment layer
// (vm.runFrame) quarantines the faulting address and re-executes the
// region in the interpreter, so the request completes and the process
// survives — the JIT is an optimization, never a point of failure.
type TransFault struct {
	// FuncID / PC identify the faulting translation's entry.
	FuncID int
	PC     int
	// Reason describes the underlying panic or internal error.
	Reason string
}

func (f *TransFault) Error() string {
	return fmt.Sprintf("translation fault at func %d pc %d: %s", f.FuncID, f.PC, f.Reason)
}

// Outcome reports the result of executing one translation.
type Outcome struct {
	Kind  OutcomeKind
	Value runtime.Value
	BCOff int
	Err   error
	// Inline is non-nil when the exit happened inside inlined code:
	// the chain of materialized callee frames, innermost first. The
	// outermost entry's RetBCOff is a pc in the root function.
	Inline []InlineResume
	// GuardTrace counts failed in-code guards (diagnostics).
	GuardFails int
	// EntryPC is the bytecode pc at which the last-entered translation
	// began executing. With direct chaining Exec tail-transfers across
	// translations, so this is NOT necessarily the pc Exec was entered
	// at; the dispatcher's no-progress (livelock) check compares the
	// exit pc against it.
	EntryPC int
	// BindCode/BindInstr identify the smash site of a BindRequest (the
	// BindJmp instruction in the exiting translation); the dispatcher
	// smashes the site to the translation it picks so the next
	// transfer chains directly. BindCode is nil when the site cannot
	// be bound (unchainable code, inline exit).
	BindCode  *mcode.Code
	BindInstr int
}

// ChainTarget is a translation seen from the machine's chaining path:
// enough to tail-transfer into it without consulting the dispatcher.
// *jit.Translation implements it.
type ChainTarget interface {
	// ChainCode is the target's assembled code.
	ChainCode() *mcode.Code
	// ChainMatch re-checks the target's entry conditions (stack depth
	// and type preconditions) against the live frame.
	ChainMatch(fr *interp.Frame) bool
	// ChainGuards is the precondition count (cost accounting).
	ChainGuards() int
}

// ChainStats counts direct-chaining activity. One instance is shared
// by every worker machine of a JIT (all fields atomic).
type ChainStats struct {
	// BindsSmashed counts smash-site writes (bind jumps and calls).
	BindsSmashed atomic.Uint64
	// ChainedJumps counts bind jumps taken through a smashed link,
	// never returning to the dispatcher.
	ChainedJumps atomic.Uint64
	// ChainedCalls counts guest calls entered through a bound callee
	// link (prologue translation reused without a Lookup).
	ChainedCalls atomic.Uint64
	// StaleLinks counts links skipped because their epoch no longer
	// matches the published translation-index version.
	StaleLinks atomic.Uint64
	// ChainMismatches counts links whose target's entry guards failed
	// against the live frame (fall back to the dispatch path).
	ChainMismatches atomic.Uint64
	// LinksSwept counts links cleared by the post-publish treadmill.
	LinksSwept atomic.Uint64
}

// ShapeStats counts shape-guard and property-IC activity. One
// instance is shared by every worker machine of a JIT (all fields
// atomic).
type ShapeStats struct {
	// Guards / GuardFails count GuardShape executions and failures.
	Guards     atomic.Uint64
	GuardFails atomic.Uint64
	// ICHits / ICMisses / ICMega count shape-IC probes that hit a
	// cached entry, rewrote the cache, or fell through a megamorphic
	// cache to the generic path.
	ICHits   atomic.Uint64
	ICMisses atomic.Uint64
	ICMega   atomic.Uint64
	// GenericPropCalls counts property accesses resolved by the
	// generic by-name helpers (megamorphic fallback, LdPropGeneric /
	// StPropGeneric, and IC probes on shapeless or dynamic-miss
	// receivers).
	GenericPropCalls atomic.Uint64
	// ICStaleDropped counts IC tables rejected by the epoch guard —
	// tables a republish (or an injected StaleIC fault) left behind,
	// detected on the execution path and rebuilt.
	ICStaleDropped atomic.Uint64
}

// tamperWord is the latch value InjectTamper stamps onto corrupted
// code (faultinject.CodeCorrupt); the low byte shifts integer returns.
const tamperWord = 0xA5

// propICCapacity is the polymorphic inline cache size; beyond it a
// site is marked megamorphic and stops probing.
const propICCapacity = 4

// PropIC is one property site's polymorphic inline cache, burned into
// the site's smashable link slot: up to propICCapacity (shape ID ->
// slot) pairs. Tables are immutable once published — misses install a
// copied table (last-writer-wins, a benign race: a lost entry is
// re-installed on the next miss) — and the link's epoch stamp
// invalidates the whole site wholesale at OptimizeAll republish.
type PropIC struct {
	N       int
	Mega    bool
	Entries [propICCapacity]PropICEntry
}

// PropICEntry maps an object shape to the property's slot index.
type PropICEntry struct {
	Shape uint32
	Slot  int32
}

// InlineResume is one materialized inline frame: run Frame; its
// return value is pushed in the enclosing frame, which resumes at
// RetBCOff.
type InlineResume struct {
	Frame    *interp.Frame
	RetBCOff int
}

// CallGuestFn dispatches a guest call from JITed code back through
// the VM (which may pick another translation or the interpreter).
// hint, when non-nil, is the call site's smashed callee link: the VM
// enters it directly when its entry guards match the fresh frame,
// skipping the dispatcher Lookup. The second return value is the
// translation the callee actually entered first (nil if it started in
// the interpreter); the machine smashes the call site with it.
type CallGuestFn func(f *hhbc.Func, this *runtime.Object, args []runtime.Value, hint ChainTarget) (runtime.Value, ChainTarget, error)

// Machine executes assembled translations.
type Machine struct {
	Env      *interp.Env
	Meter    *Meter
	Counters *profile.Counters
	Cache    *mcode.Cache
	Fetch    *FetchModel

	// CallGuest is installed by the VM.
	CallGuest CallGuestFn

	// Fallback, installed by the VM, scans the published retranslation
	// cluster at (fnID, pc) for a chainable translation matching fr —
	// the in-cache guard cascade taken when a smashed link's guards
	// miss. It must NOT mint translations or touch the dispatcher's
	// single-flight path. Nil when chaining is unavailable.
	Fallback func(fnID, pc int, fr *interp.Frame) ChainTarget

	// FI, when non-nil, injects translation-entry panics
	// (faultinject.TransPanic) so the containment path is exercised
	// under test and in the `-exp faults` experiment.
	FI *faultinject.Injector

	// Epoch points at the JIT's translation-index version counter;
	// links stamped with an older epoch are stale and fall back to
	// the dispatch path. Nil disables link following entirely.
	Epoch *atomic.Uint64
	// FreezeLinks stops this machine from writing smash-site slots
	// (IC installs, stale-link repairs): sentry replay machines observe
	// shared code state without perturbing it (DESIGN.md §15).
	FreezeLinks bool
	// Chain is the JIT-shared chaining statistics sink.
	Chain *ChainStats
	// Shapes is the JIT-shared shape-guard/IC statistics sink.
	Shapes *ShapeStats

	// methodCache: per-site monomorphic inline caches.
	methodCache map[int64]methodCacheEnt

	// argBufs is a free-list of call-argument scratch slices (runCall
	// hot path); it is a stack because guest calls nest.
	argBufs [][]runtime.Value
}

type methodCacheEnt struct {
	cls    *runtime.Class
	funcID int
}

// New creates a machine bound to an environment.
func New(env *interp.Env, meter *Meter, counters *profile.Counters, cache *mcode.Cache) *Machine {
	m := &Machine{
		Env: env, Meter: meter, Counters: counters, Cache: cache,
		Fetch:       NewFetchModel(),
		Chain:       &ChainStats{},
		Shapes:      &ShapeStats{},
		methodCache: map[int64]methodCacheEnt{},
	}
	m.Fetch.HugeCovers = cache.HugeCovers
	return m
}

// activation is the per-execution machine state.
type activation struct {
	regs   [vasm.TotalMachineRegs]runtime.Value
	spills []runtime.Value
	fr     *interp.Frame
	// entryPC is the bytecode pc the currently-executing translation
	// was entered at (updated on every chained transfer).
	entryPC int
}

// actPool recycles activations across Exec calls: one machine
// executes millions of translations per request stream, and the
// activation (plus its spill slab) dominated per-Exec allocations.
var actPool = sync.Pool{New: func() any { return new(activation) }}

// bindSpace sizes the activation for code: the spill area and the
// frame extension for inline-callee locals.
func (a *activation) bindSpace(code *mcode.Code) {
	if n := code.NumSpills; n <= cap(a.spills) {
		a.spills = a.spills[:n]
	} else {
		a.spills = make([]runtime.Value, n)
	}
	for len(a.fr.Locals) < code.ExtSlots {
		a.fr.Locals = append(a.fr.Locals, runtime.Uninit())
	}
}

// release clears held values (so pooled activations do not pin guest
// objects) and returns the activation to the pool.
func (a *activation) release() {
	for i := range a.regs {
		a.regs[i] = runtime.Value{}
	}
	for i := range a.spills {
		a.spills[i] = runtime.Value{}
	}
	a.spills = a.spills[:0]
	a.fr = nil
	actPool.Put(a)
}

func (a *activation) get(r vasm.Reg) runtime.Value {
	if r >= vasm.SpillRegBase {
		return a.spills[r-vasm.SpillRegBase]
	}
	return a.regs[r]
}

func (a *activation) set(r vasm.Reg, v runtime.Value) {
	if r >= vasm.SpillRegBase {
		a.spills[r-vasm.SpillRegBase] = v
		return
	}
	a.regs[r] = v
}

// Exec runs code against fr until it returns, exits, or throws.
// Chained bind jumps tail-transfer into successor translations
// without returning, so one Exec may traverse many translations.
func (m *Machine) Exec(code *mcode.Code, fr *interp.Frame) Outcome {
	act := actPool.Get().(*activation)
	act.fr = fr
	act.entryPC = fr.PC
	act.bindSpace(code)
	out := m.exec(code, act)
	act.release()
	return out
}

func (m *Machine) exec(code *mcode.Code, act *activation) (out Outcome) {
	fr := act.fr
	h := m.Env.Heap
	guardFails := 0
	// chained counts direct transfers taken this Exec; the budget is a
	// backstop that bounces through the dispatcher (and its livelock
	// detection) if a chain degenerates into a no-progress cycle.
	chained := 0
	// Block 0 is the translation entry; layout may have placed hotter
	// loop blocks ahead of it.
	ip := code.BlockIndex[0]
	// Fast dispatch state (see dispatch.go): fast code charges static
	// cycles per straight-line run [runStart, ip] via CostPrefix and
	// probes the fetch model only at line heads and transfers (xfer).
	// runStart -1 means nothing has been dispatched yet.
	fast := code.FastDispatch
	runStart := -1
	xfer := true
	// Hot loop state hoisted out of code so the per-instruction path
	// does not reload slice headers through the Code pointer (calls in
	// the loop body would otherwise force reloads). Refreshed at every
	// chained transfer into a different translation.
	instrs := code.Instrs
	flags := code.DispatchFlags
	defer func() {
		// Fault containment: a panic inside a translation becomes a
		// typed TransFault outcome instead of killing the process. The
		// frame is re-synced to the entry pc of the translation that
		// faulted; the VM quarantines the address and re-executes the
		// stretch in the interpreter.
		if r := recover(); r != nil {
			if fast && runStart >= 0 {
				// Settle the pending run through the panicking
				// instruction (the classic path charges each
				// instruction before executing it).
				through := ip
				if through > len(code.Instrs)-1 {
					through = len(code.Instrs) - 1
				}
				settleRun(m.Meter, code, runStart, through)
			}
			reason := fmt.Sprintf("panic: %v", r)
			if ip >= 0 && ip < len(code.Instrs) {
				reason = fmt.Sprintf("panic at ip=%d op=%s: %v", ip, code.Instrs[ip].Op, r)
			}
			out = m.faultOutcome(act, guardFails, reason)
		}
	}()
	if m.FI.Should(faultinject.TransPanic) {
		panic(faultinject.Errf(faultinject.TransPanic))
	}
	if code.Tampered() == 0 && m.FI.Should(faultinject.CodeCorrupt) {
		// Flip bytes of this translation's published code: the latch
		// perturbs the translation's observable results (see the Ret
		// handler) until the sentry auditor catches the checksum
		// mismatch and reminted code replaces it (DESIGN.md §15). CAS'd
		// so one latch is one corruption — a translation already
		// corrupted is not corrupted again.
		code.InjectTamper(tamperWord)
	}
	runStart = ip
	for {
		if ip >= len(instrs) {
			if fast {
				settleRun(m.Meter, code, runStart, ip-1)
			}
			return m.faultOutcome(act, guardFails, "fell off code end")
		}
		in := &instrs[ip]
		if fast {
			if fl := flags[ip]; fl != 0 || xfer {
				// Line head or transfer landing: probe the fetch model
				// (free when the line is unchanged — over-probing at a
				// same-line transfer is invisible).
				m.Meter.Cycles += m.Fetch.Fetch(code.AddrOf(ip))
				xfer = false
				if fl&mcode.FlagFetchTails != 0 {
					for _, ta := range code.FetchTails[ip] {
						m.Meter.Cycles += m.Fetch.Fetch(ta)
					}
				}
			}
			if useHandlerTable {
				if h := hotHandlers[in.Op]; h != nil {
					h(m, code, act, in)
					ip++
					continue
				}
			}
		} else {
			m.Meter.ChargeOp(in.Op, opCost(in.Op)+m.Fetch.Fetch(code.AddrOf(ip)))
		}

		switch in.Op {
		case vasm.Nop:
		case vasm.LdImm:
			m.setImm(act, in.D, code.Imms[in.I64])
		case vasm.Copy:
			act.set(in.D, act.get(in.A))
		case vasm.LdLoc:
			v := fr.Locals[in.I64]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			act.set(in.D, v)
		case vasm.StLoc:
			fr.Locals[in.I64] = act.get(in.A)
		case vasm.LdStk:
			if i := int(in.I64); i >= 0 && i < len(fr.Stack) {
				act.set(in.D, fr.Stack[i])
			} else {
				// A layout bug, not a guest condition: fault the
				// translation so the self-healing path quarantines it
				// instead of silently computing on a phantom Null.
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				return m.faultOutcome(act, guardFails, fmt.Sprintf(
					"LdStk slot %d out of range (stack depth %d)", in.I64, len(fr.Stack)))
			}
		case vasm.Spill:
			act.spills[in.I64] = act.get(in.A)
		case vasm.Reload:
			act.set(in.D, act.spills[in.I64])

		case vasm.GuardKind:
			v := act.get(in.A)
			if !v.Type().SubtypeOf(in.TypeParam) {
				guardFails++
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				m.Meter.Charge(guardFailPenalty)
				out, nip, done := m.jumpOrExit(code, act, in.Target1, guardFails)
				if !done {
					ip, runStart, xfer = nip, nip, true
					continue
				}
				if nc, cip, ok := m.chainFrom(code, nip, act, &out, &chained); ok {
					code, ip = nc, cip
					fast, runStart, xfer = code.FastDispatch, cip, true
					instrs, flags = code.Instrs, code.DispatchFlags
					continue
				}
				return out
			}
		case vasm.GuardCls:
			v := act.get(in.A)
			if v.Kind != types.KObj || int64(v.O.Class.ClassID) != in.I64 {
				guardFails++
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				m.Meter.Charge(guardFailPenalty)
				out, nip, done := m.jumpOrExit(code, act, in.Target1, guardFails)
				if !done {
					ip, runStart, xfer = nip, nip, true
					continue
				}
				if nc, cip, ok := m.chainFrom(code, nip, act, &out, &chained); ok {
					code, ip = nc, cip
					fast, runStart, xfer = code.FastDispatch, cip, true
					instrs, flags = code.Instrs, code.DispatchFlags
					continue
				}
				return out
			}
		case vasm.GuardShape:
			v := act.get(in.A)
			m.Shapes.Guards.Add(1)
			if v.Kind != types.KObj || v.O.ShapeID() != uint32(in.I64) {
				m.Shapes.GuardFails.Add(1)
				guardFails++
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				m.Meter.Charge(guardFailPenalty)
				out, nip, done := m.jumpOrExit(code, act, in.Target1, guardFails)
				if !done {
					ip, runStart, xfer = nip, nip, true
					continue
				}
				if nc, cip, ok := m.chainFrom(code, nip, act, &out, &chained); ok {
					code, ip = nc, cip
					fast, runStart, xfer = code.FastDispatch, cip, true
					instrs, flags = code.Instrs, code.DispatchFlags
					continue
				}
				return out
			}
		case vasm.LdLocGK:
			// Fused LdLoc + GuardKind: load the local, then guard the
			// loaded value exactly as the unfused pair would.
			v := fr.Locals[in.I64]
			if v.Kind == types.KUninit {
				v = runtime.Null()
			}
			act.set(in.D, v)
			if !v.Type().SubtypeOf(in.TypeParam) {
				guardFails++
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				m.Meter.Charge(guardFailPenalty)
				out, nip, done := m.jumpOrExit(code, act, in.Target1, guardFails)
				if !done {
					ip, runStart, xfer = nip, nip, true
					continue
				}
				if nc, cip, ok := m.chainFrom(code, nip, act, &out, &chained); ok {
					code, ip = nc, cip
					fast, runStart, xfer = code.FastDispatch, cip, true
					instrs, flags = code.Instrs, code.DispatchFlags
					continue
				}
				return out
			}

		case vasm.AddI:
			act.set(in.D, runtime.Int(act.get(in.A).I+act.get(in.B).I))
		case vasm.SubI:
			act.set(in.D, runtime.Int(act.get(in.A).I-act.get(in.B).I))
		case vasm.MulI:
			act.set(in.D, runtime.Int(act.get(in.A).I*act.get(in.B).I))
		case vasm.NegI:
			act.set(in.D, runtime.Int(-act.get(in.A).I))
		case vasm.AddD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D+act.get(in.B).D))
		case vasm.SubD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D-act.get(in.B).D))
		case vasm.MulD:
			act.set(in.D, runtime.Dbl(act.get(in.A).D*act.get(in.B).D))
		case vasm.DivD:
			b := act.get(in.B).D
			if b == 0 {
				if fast {
					settleRun(m.Meter, code, runStart, ip)
					runStart = ip + 1
				}
				out := m.throwTo(code, act, in.Target1,
					runtime.NewError("division by zero"), guardFails)
				if out != nil {
					return *out
				}
			}
			act.set(in.D, runtime.Dbl(act.get(in.A).D/b))
		case vasm.NegD:
			act.set(in.D, runtime.Dbl(-act.get(in.A).D))
		case vasm.CmpI:
			act.set(in.D, runtime.Bool(cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)))
		case vasm.CmpD:
			act.set(in.D, runtime.Bool(cmpD(in.I64&0xff, act.get(in.A).D, act.get(in.B).D)))

		case vasm.ToBool:
			act.set(in.D, runtime.Bool(act.get(in.A).Bool()))
		case vasm.ToInt:
			act.set(in.D, runtime.Int(act.get(in.A).ToInt()))
		case vasm.ToDbl:
			act.set(in.D, runtime.Dbl(act.get(in.A).ToDbl()))

		case vasm.IncRef:
			h.IncRef(act.get(in.A))
		case vasm.DecRef:
			h.DecRef(act.get(in.A))

		// Non-branching superinstructions normally dispatch through the
		// handler table; these cases keep the classic path able to
		// execute fused code (e.g. metadata-free replay paths).
		case vasm.LdImmAddI:
			m.setImm(act, vasm.Reg(in.Target2), code.Imms[in.I64>>16])
			act.set(in.D, runtime.Int(act.get(in.A).I+act.get(in.B).I))
		case vasm.LdImmCmpI:
			m.setImm(act, vasm.Reg(in.Target2), code.Imms[in.I64>>16])
			act.set(in.D, runtime.Bool(cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)))
		case vasm.IncRefN:
			for _, r := range in.Args {
				h.IncRef(act.get(r))
			}
		case vasm.DecRefN:
			for _, r := range in.Args {
				h.DecRef(act.get(r))
			}

		case vasm.ArrCount:
			act.set(in.D, runtime.Int(int64(act.get(in.A).A.Len())))
		case vasm.ArrGetPkI:
			arr := act.get(in.A)
			el, ok := arr.A.GetIntKey(act.get(in.B).I)
			if !ok || el.Kind == types.KUninit {
				el = runtime.Null()
				m.Meter.Charge(helperCost[vasm.HArrGetPackedMiss])
			}
			h.IncRef(el)
			act.set(in.D, el)

		case vasm.LdProp:
			act.set(in.D, act.get(in.A).O.GetPropSlot(int(in.I64)))
		case vasm.StProp:
			act.get(in.A).O.SetPropSlot(h, int(in.I64), act.get(in.B))

		case vasm.LdPropIC:
			ov := act.get(in.A)
			if ov.Kind != types.KObj {
				if fast {
					settleRun(m.Meter, code, runStart, ip)
					runStart = ip + 1
				}
				out := m.throwTo(code, act, in.Target1,
					runtime.NewError("property access on non-object"), guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			if slot, ok := m.probePropIC(code, ip, ov.O, in.Str); ok {
				p := ov.O.GetPropSlot(slot)
				if p.Kind == types.KUninit {
					p = runtime.Null()
				}
				h.IncRef(p)
				act.set(in.D, p)
			} else {
				// Megamorphic site, shapeless receiver, or a property
				// the shape does not describe: generic by-name path.
				m.Shapes.GenericPropCalls.Add(1)
				act.set(in.D, runtime.GetPropNamed(h, ov.O, in.Str))
			}
		case vasm.StPropIC:
			ov, val := act.get(in.A), act.get(in.B)
			if ov.Kind != types.KObj {
				h.DecRef(val)
				if fast {
					settleRun(m.Meter, code, runStart, ip)
					runStart = ip + 1
				}
				out := m.throwTo(code, act, in.Target1,
					runtime.NewError("property write on non-object"), guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			if slot, ok := m.probePropIC(code, ip, ov.O, in.Str); ok {
				// SetPropSlot maintains the shape on retyping stores, so
				// the cached slot stays valid across kind changes.
				ov.O.SetPropSlot(h, slot, val)
			} else {
				m.Shapes.GenericPropCalls.Add(1)
				if err := runtime.SetPropNamed(h, ov.O, in.Str, val); err != nil {
					if fast {
						settleRun(m.Meter, code, runStart, ip)
						runStart = ip + 1
					}
					out := m.throwTo(code, act, in.Target1,
						runtime.NewError("%s", err.Error()), guardFails)
					if out != nil {
						return *out
					}
					continue
				}
			}
		case vasm.LdThis:
			if fr.This == nil {
				if fast {
					settleRun(m.Meter, code, runStart, ip)
				}
				out := m.throwTo(code, act, -1,
					runtime.NewError("using $this outside object context"), guardFails)
				return *out
			}
			act.set(in.D, runtime.ObjV(fr.This))

		case vasm.Helper:
			hid, extra := vasm.UnpackHelper(in.I64)
			m.Meter.Charge(helperCost[hid])
			res, err := m.runHelper(act, hid, extra, in)
			if err != nil {
				if fast {
					settleRun(m.Meter, code, runStart, ip)
					runStart = ip + 1
				}
				out := m.throwTo(code, act, in.Target1, err, guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			if in.D != vasm.InvalidReg {
				act.set(in.D, res)
			}

		case vasm.CallFunc, vasm.CallBuiltin, vasm.CallMethodD, vasm.CallMethodC:
			res, err := m.runCall(code, ip, act, in)
			if err != nil {
				if fast {
					settleRun(m.Meter, code, runStart, ip)
					runStart = ip + 1
				}
				out := m.throwTo(code, act, in.Target1, err, guardFails)
				if out != nil {
					return *out
				}
				continue
			}
			m.Meter.Charge(callReturnCost)
			if in.D != vasm.InvalidReg {
				act.set(in.D, res)
			}

		case vasm.CountInc:
			if m.Counters != nil {
				m.Counters.Inc(profile.TransID(in.I64))
			}
		case vasm.ProfCallSite:
			if m.Counters != nil {
				v := act.get(in.A)
				if v.Kind == types.KObj {
					m.Counters.RecordCallTarget(
						profile.CallSite{FuncID: fr.Fn.ID, PC: int(in.I64)},
						v.O.Class.Name)
				}
			}
		case vasm.ProfPropShape:
			if m.Counters != nil {
				v := act.get(in.A)
				if v.Kind == types.KObj {
					if sid := v.O.ShapeID(); sid != 0 {
						m.Counters.RecordPropShape(
							profile.CallSite{FuncID: fr.Fn.ID, PC: int(in.I64)}, sid)
					}
				}
			}

		case vasm.Jmp:
			nip := code.BlockIndex[in.Target1]
			if fast {
				// Fallthrough coalescing: a branch to the next stream
				// instruction continues the straight-line run — no
				// settlement, no fetch re-probe (DispatchFlags already
				// describe stream-successive lines, and the jump's own
				// cost is inside the prefix sums).
				if nip == ip+1 {
					ip = nip
					continue
				}
				settleRun(m.Meter, code, runStart, ip)
			}
			ip = nip
			runStart, xfer = ip, true
			continue
		case vasm.Jcc:
			cond := act.get(in.A).Bool()
			if in.I64&0x100 != 0 { // inverted by jump optimization
				cond = !cond
			}
			var nip int
			if cond {
				nip = code.BlockIndex[in.Target1]
			} else {
				nip = code.BlockIndex[in.Target2]
			}
			if fast {
				if nip == ip+1 {
					ip = nip
					continue
				}
				settleRun(m.Meter, code, runStart, ip)
			}
			ip = nip
			runStart, xfer = ip, true
			continue
		case vasm.CmpIJcc:
			// Fused CmpI + Jcc: write the compare result, then branch
			// on it (honoring the jump-optimization inversion bit).
			cond := cmpI(in.I64&0xff, act.get(in.A).I, act.get(in.B).I)
			act.set(in.D, runtime.Bool(cond))
			if in.I64&0x100 != 0 {
				cond = !cond
			}
			var nip int
			if cond {
				nip = code.BlockIndex[in.Target1]
			} else {
				nip = code.BlockIndex[in.Target2]
			}
			if fast {
				if nip == ip+1 {
					ip = nip
					continue
				}
				settleRun(m.Meter, code, runStart, ip)
			}
			ip = nip
			runStart, xfer = ip, true
			continue
		case vasm.CmpDJcc:
			cond := cmpD(in.I64&0xff, act.get(in.A).D, act.get(in.B).D)
			act.set(in.D, runtime.Bool(cond))
			if in.I64&0x100 != 0 {
				cond = !cond
			}
			var nip int
			if cond {
				nip = code.BlockIndex[in.Target1]
			} else {
				nip = code.BlockIndex[in.Target2]
			}
			if fast {
				if nip == ip+1 {
					ip = nip
					continue
				}
				settleRun(m.Meter, code, runStart, ip)
			}
			ip = nip
			runStart, xfer = ip, true
			continue
		case vasm.JmpTable:
			tbl := code.Tables[in.I64]
			idx := act.get(in.A).ToInt() - tbl.Base
			var nip int
			if idx >= 0 && idx < int64(len(tbl.Targets)) {
				nip = code.BlockIndex[tbl.Targets[idx]]
			} else {
				nip = code.BlockIndex[tbl.Default]
			}
			if fast {
				if nip == ip+1 {
					ip = nip
					continue
				}
				settleRun(m.Meter, code, runStart, ip)
			}
			ip = nip
			runStart, xfer = ip, true
			continue

		case vasm.Ret:
			if fast {
				settleRun(m.Meter, code, runStart, ip)
			}
			v := act.get(in.A)
			if t := code.Tampered(); t != 0 && v.Kind == types.KInt {
				// Corrupted code computes corrupted results: the injected
				// byte flips (see the exec-entry CodeCorrupt draw) shift
				// integer returns, silently — no panic, no guard fail —
				// which is exactly the failure mode only the sentry's
				// checksum audit or shadow execution can catch.
				v.I += int64(t & 0xFF)
			}
			m.Meter.Charge(uint64(2 * len(fr.Locals))) // frame teardown
			fr.Stack = fr.Stack[:0]
			frameRelease(m.Env, fr)
			return Outcome{Kind: Returned, Value: v, GuardFails: guardFails,
				EntryPC: act.entryPC}

		case vasm.Exit:
			if fast {
				settleRun(m.Meter, code, runStart, ip)
			}
			out := m.takeExit(act, in.Ex, SideExit, nil, guardFails)
			if nc, nip, ok := m.chainFrom(code, ip, act, &out, &chained); ok {
				code, ip = nc, nip
				fast, runStart, xfer = code.FastDispatch, nip, true
				instrs, flags = code.Instrs, code.DispatchFlags
				continue
			}
			return out
		case vasm.BindJmp:
			if fast {
				settleRun(m.Meter, code, runStart, ip)
			}
			out := m.takeExit(act, in.Ex, BindRequest, nil, guardFails)
			out.BCOff = int(in.I64)
			if out.Inline == nil {
				fr.PC = out.BCOff
			}
			if nc, nip, ok := m.chainFrom(code, ip, act, &out, &chained); ok {
				code, ip = nc, nip
				fast, runStart, xfer = code.FastDispatch, nip, true
				instrs, flags = code.Instrs, code.DispatchFlags
				continue
			}
			return out

		default:
			if fast {
				settleRun(m.Meter, code, runStart, ip)
			}
			return m.faultOutcome(act, guardFails, fmt.Sprintf("bad opcode %s", in.Op))
		}
		ip++
	}
}

// settleRun charges the static cost of the straight-line stretch
// [runStart, through] in one add (fast dispatch). No-op when the
// stretch is empty (through < runStart).
func settleRun(meter *Meter, code *mcode.Code, runStart, through int) {
	if through >= runStart {
		meter.Cycles += code.CostPrefix[through+1] - code.CostPrefix[runStart]
	}
}

// faultOutcome builds the contained-fault outcome for the translation
// act is currently executing: the frame is re-synced to the entry pc
// (where the interpreter can deterministically re-execute) and the
// eval stack left as the entry stack — the machine only rewrites
// fr.Stack at exits, so at this point it still holds the entry state.
func (m *Machine) faultOutcome(act *activation, guardFails int, reason string) Outcome {
	fr := act.fr
	fr.PC = act.entryPC
	fnID := -1
	if fr.Fn != nil {
		fnID = fr.Fn.ID
	}
	return Outcome{
		Kind: Faulted, BCOff: act.entryPC, EntryPC: act.entryPC,
		GuardFails: guardFails,
		Err:        &TransFault{FuncID: fnID, PC: act.entryPC, Reason: reason},
	}
}

// chainBudget bounds chained transfers per Exec. It is deliberately
// huge — real loops should stay in the machine — and only exists so a
// degenerate no-progress chain cycle periodically surfaces at the
// dispatcher, whose livelock detection can break it.
const chainBudget = 1 << 20

// chainFrom follows the smash-site link at (code, ip) after an exit
// resolved the continuation pc: on success the machine tail-transfers
// into the successor — no dispatcher round-trip, no activation
// rebuild, a smashed-jump charge instead of the dispatch fee — and
// (newCode, newIP, true) is returned. On failure the outcome's smash
// site is marked (when bindable) so the dispatcher smashes it with
// whatever translation it picks next.
func (m *Machine) chainFrom(code *mcode.Code, ip int, act *activation, out *Outcome, chained *int) (*mcode.Code, int, bool) {
	if out.Kind != SideExit && out.Kind != BindRequest {
		return nil, 0, false
	}
	if out.Inline != nil || !code.Chainable {
		return nil, 0, false
	}
	fr := act.fr
	// No-progress exits (continuation pc == the pc this translation was
	// entered at) always bounce to the dispatcher: its livelock check
	// forces an interpreter stretch, exactly as in unchained dispatch.
	if *chained < chainBudget && fr.PC != act.entryPC {
		if l := code.LoadLink(ip); l != nil {
			var target ChainTarget
			stale := false
			if m.Epoch == nil || l.Epoch != m.Epoch.Load() {
				stale = true
				m.Chain.StaleLinks.Add(1)
			} else if t, ok := l.Target.(ChainTarget); ok {
				nc := t.ChainCode()
				m.Meter.Charge(smashedJumpCost + chainGuardCost*uint64(t.ChainGuards()))
				if nc.Chainable && t.ChainMatch(fr) {
					target = t
				} else {
					m.Chain.ChainMismatches.Add(1)
				}
			}
			if target == nil && m.Fallback != nil {
				// The link is stale or its guards missed: cascade
				// through the published retranslation cluster (guards
				// chained in the code cache) before bouncing to the
				// dispatcher. Fallback only returns chainable matches.
				target = m.Fallback(fr.Fn.ID, fr.PC, fr)
			}
			if target != nil {
				nc := target.ChainCode()
				if stale && m.Epoch != nil && !m.FreezeLinks {
					// Repair the stale link in place (a re-smash) so
					// later transfers skip the fallback scan.
					code.StoreLink(ip, &mcode.Link{Epoch: m.Epoch.Load(), Target: target})
					m.Chain.BindsSmashed.Add(1)
				}
				m.Chain.ChainedJumps.Add(1)
				*chained++
				act.bindSpace(nc)
				act.entryPC = fr.PC
				return nc, nc.BlockIndex[0], true
			}
		}
	}
	out.BindCode, out.BindInstr = code, ip
	return nil, 0, false
}

func (m *Machine) setImm(act *activation, d vasm.Reg, iv vasm.ImmValue) {
	switch iv.Kind {
	case types.KInt:
		act.set(d, runtime.Int(iv.I))
	case types.KDbl:
		act.set(d, runtime.Dbl(iv.D))
	case types.KBool:
		act.set(d, runtime.Bool(iv.I != 0))
	case types.KStr:
		act.set(d, runtime.StrV(runtime.InternStr(iv.S)))
	case types.KUninit:
		act.set(d, runtime.Uninit())
	default:
		act.set(d, runtime.Null())
	}
}

// probePropIC resolves a property through the shape IC burned into
// the site's link slot. Returns (slot, true) when the receiver's
// shape resolves the name — via a cached entry (hit) or a freshly
// installed one (miss) — and (0, false) when the access must take the
// generic by-name path: megamorphic site, shapeless object, or a name
// the current shape does not describe (a dynamic-property store about
// to transition the shape). Tables are copy-on-write; a racing
// install is last-writer-wins (the lost entry is re-installed on the
// next miss). Epoch-stale links are ignored and rebuilt against the
// current epoch, so a republish invalidates every site wholesale.
func (m *Machine) probePropIC(code *mcode.Code, ip int, o *runtime.Object, name string) (int, bool) {
	var epoch uint64
	if m.Epoch != nil {
		epoch = m.Epoch.Load()
	}
	sid := o.ShapeID()
	var ic *PropIC
	if l := code.LoadLink(ip); l != nil {
		if l.Epoch == epoch {
			ic, _ = l.Target.(*PropIC)
		} else if _, isIC := l.Target.(*PropIC); isIC {
			// Epoch guard caught an outdated IC table (a republish the
			// site missed, or an injected StaleIC): the table is dropped
			// and rebuilt below against the current epoch.
			m.Shapes.ICStaleDropped.Add(1)
		}
	}
	if ic != nil {
		if ic.Mega {
			m.Shapes.ICMega.Add(1)
			m.Meter.Charge(icMegaCost)
			return 0, false
		}
		for i := 0; i < ic.N; i++ {
			if ic.Entries[i].Shape == sid {
				m.Shapes.ICHits.Add(1)
				return int(ic.Entries[i].Slot), true
			}
		}
	}
	m.Shapes.ICMisses.Add(1)
	m.Meter.Charge(icMissCost)
	if sid == 0 {
		return 0, false
	}
	slot, ok := o.Shape.Lookup(name)
	if !ok {
		return 0, false
	}
	next := &PropIC{}
	if ic != nil {
		*next = *ic
	}
	if next.N >= propICCapacity {
		next.Mega = true
	} else {
		next.Entries[next.N] = PropICEntry{Shape: sid, Slot: int32(slot)}
		next.N++
	}
	if m.FreezeLinks {
		return slot, true
	}
	if epoch > 0 && m.FI.Should(faultinject.StaleIC) {
		// Roll the freshly built table back one epoch (a lost IC
		// invalidation): the next probe's epoch guard must detect and
		// drop it, and the sentry auditor clears any leftover before it
		// can survive into a future epoch where it would be wrong.
		code.StoreLink(ip, &mcode.Link{Epoch: epoch - 1, Target: next})
		return slot, true
	}
	code.StoreLink(ip, &mcode.Link{Epoch: epoch, Target: next})
	return slot, true
}

// jumpOrExit handles a guard-fail target: a chained block (done=false,
// resume at instruction index idx) or an exit stub block (done=true,
// idx is the stub's Exit instruction — the smash site for chaining).
func (m *Machine) jumpOrExit(code *mcode.Code, act *activation, target int, guardFails int) (out Outcome, idx int, done bool) {
	idx, ok := code.BlockIndex[target]
	if !ok {
		return Outcome{Kind: Threw, Err: runtime.NewError("machine: bad guard target"),
			GuardFails: guardFails, EntryPC: act.entryPC}, 0, true
	}
	// Exit stubs consist of a single Exit instruction.
	if idx < len(code.Instrs) && code.Instrs[idx].Op == vasm.Exit {
		m.Meter.Charge(opCost(vasm.Exit))
		return m.takeExit(act, code.Instrs[idx].Ex, SideExit, nil, guardFails), idx, true
	}
	return Outcome{}, idx, false
}

// throwTo routes a guest error through the instruction's catch stub,
// materializing frame state; returns the final outcome (nil never —
// kept pointer-shaped for call-site brevity).
func (m *Machine) throwTo(code *mcode.Code, act *activation, stub int, err error, guardFails int) *Outcome {
	var ex *vasm.ExitInfo
	if stub >= 0 {
		if idx, ok := code.BlockIndex[stub]; ok && idx < len(code.Instrs) &&
			code.Instrs[idx].Op == vasm.Exit {
			ex = code.Instrs[idx].Ex
		}
	}
	out := m.takeExit(act, ex, Threw, err, guardFails)
	return &out
}

// takeExit materializes VM state per the exit descriptor.
func (m *Machine) takeExit(act *activation, ex *vasm.ExitInfo, kind OutcomeKind, err error, guardFails int) Outcome {
	fr := act.fr
	out := Outcome{Kind: kind, Err: err, GuardFails: guardFails, EntryPC: act.entryPC}
	if ex == nil {
		out.BCOff = fr.PC
		fr.Stack = fr.Stack[:0]
		return out
	}
	out.BCOff = ex.BCOff
	if ex.Inline != nil {
		// Materialize the whole chain of inlined callee frames from
		// the extended local slots (Section 5.3.1: side exits can
		// materialize an arbitrary number of callee frames),
		// innermost first. The eval stack of frame i comes from the
		// CallerStackRegs of the context one level in; the innermost
		// frame's stack is the exit's own StackRegs.
		stackFor := func(regs []vasm.Reg) []runtime.Value {
			var s []runtime.Value
			for _, r := range regs {
				s = append(s, act.get(r))
			}
			return s
		}
		innerStack := stackFor(ex.StackRegs)
		innerPC := ex.BCOff
		for ii := ex.Inline; ii != nil; ii = ii.Parent {
			callee := m.Env.Unit.Funcs[ii.FuncID]
			cf := &interp.Frame{Fn: callee, PC: innerPC, Stack: innerStack}
			cf.Locals = make([]runtime.Value, callee.NumLocals)
			for i := 0; i < callee.NumLocals; i++ {
				cf.Locals[i] = fr.Locals[ii.LocalsBase+i]
				fr.Locals[ii.LocalsBase+i] = runtime.Uninit()
			}
			if ii.ThisReg != vasm.InvalidReg {
				if tv := act.get(ii.ThisReg); tv.Kind == types.KObj {
					cf.This = tv.O
				}
			}
			out.Inline = append(out.Inline, InlineResume{Frame: cf, RetBCOff: ii.RetBCOff})
			// The enclosing frame resumes after this context's call.
			innerStack = stackFor(ii.CallerStackRegs)
			innerPC = ii.RetBCOff
		}
		// The root frame's stack is the outermost caller stack.
		fr.Stack = innerStack
		return out
	}
	fr.Stack = fr.Stack[:0]
	for _, r := range ex.StackRegs {
		fr.Stack = append(fr.Stack, act.get(r))
	}
	fr.PC = ex.BCOff
	return out
}

// frameRelease mirrors interp's frame teardown.
func frameRelease(env *interp.Env, fr *interp.Frame) {
	for i, v := range fr.Locals {
		env.Heap.DecRef(v)
		fr.Locals[i] = runtime.Uninit()
	}
	for _, it := range fr.Iters {
		if it != nil {
			env.Heap.DecRef(runtime.ArrV(it.Arr()))
		}
	}
	fr.Iters = nil
}

func cmpI(cond, a, b int64) bool {
	switch cond {
	case 0:
		return a < b
	case 1:
		return a <= b
	case 2:
		return a > b
	case 3:
		return a >= b
	case 4:
		return a == b
	default:
		return a != b
	}
}

func cmpD(cond int64, a, b float64) bool {
	switch cond {
	case 0:
		return a < b
	case 1:
		return a <= b
	case 2:
		return a > b
	case 3:
		return a >= b
	case 4:
		return a == b
	default:
		return a != b
	}
}
