package core_test

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jit"
)

const donorSrc = `
function hot($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s += $i * 2; } return $s; }
function fmt($x) { return "v=" . $x; }
echo fmt(hot(40)), "\n";
`

// changedSrc edits hot()'s body (the multiplier), leaving fmt intact.
const changedSrc = `
function hot($n) { $s = 0; for ($i = 0; $i < $n; $i++) { $s += $i * 3; } return $s; }
function fmt($x) { return "v=" . $x; }
echo fmt(hot(40)), "\n";
`

func warmEngine(t *testing.T, src string) *core.Engine {
	t.Helper()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 100
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.RunRequest(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func freshEngine(t *testing.T, src string) *core.Engine {
	t.Helper()
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 100
	eng, err := core.NewEngine(unit, cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestJumpstartStaleFunctionFallback takes a snapshot on source S1 and
// loads it into an engine built from S2, where one function's bytecode
// changed. The changed function must be rejected as stale (it falls
// back to live profiling); the untouched functions load; and the S2
// engine's output reflects S2's semantics — the stale profile must not
// leak S1 behavior.
func TestJumpstartStaleFunctionFallback(t *testing.T) {
	donor := warmEngine(t, donorSrc)
	if donor.Stats().OptimizeRuns == 0 {
		t.Fatal("donor never fired the global retranslation trigger")
	}
	snap := donor.ProfileSnapshot()
	if len(snap.Funcs) == 0 {
		t.Fatal("empty snapshot from warmed donor")
	}

	eng := freshEngine(t, changedSrc)
	res := eng.LoadProfile(snap)

	stale := strings.Join(res.StaleFuncs, ",")
	if !strings.Contains(stale, "hot") {
		t.Errorf("edited function hot must be stale, got stale=%q", stale)
	}
	if strings.Contains(stale, "fmt") {
		t.Errorf("untouched function fmt must not be stale, got stale=%q", stale)
	}
	if res.LoadedFuncs == 0 || res.LoadedTrans == 0 {
		t.Errorf("untouched functions should still load: %+v", res)
	}
	if !res.Optimized {
		t.Error("partial staleness must not block the optimize pass")
	}

	// Correctness: the jumpstarted engine must produce S2's output.
	var out strings.Builder
	if _, err := eng.RunRequest(&out); err != nil {
		t.Fatal(err)
	}
	want := "v=2340\n" // sum 0..39 of 3i
	if out.String() != want {
		t.Errorf("jumpstarted output %q, want %q", out.String(), want)
	}

	// The stale function still warms up the normal way afterwards.
	for i := 0; i < 40; i++ {
		if _, err := eng.RunRequest(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	var out2 strings.Builder
	if _, err := eng.RunRequest(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != want {
		t.Errorf("post-warmup output %q, want %q", out2.String(), want)
	}
}

// TestJumpstartSameSourceLoadsEverything is the happy path: identical
// source accepts every function and publishes optimized code without
// live profiling.
func TestJumpstartSameSourceLoadsEverything(t *testing.T) {
	donor := warmEngine(t, donorSrc)
	snap := donor.ProfileSnapshot()

	eng := freshEngine(t, donorSrc)
	res := eng.LoadProfile(snap)
	if len(res.StaleFuncs) != 0 || len(res.UnknownFuncs) != 0 {
		t.Errorf("identical source: stale=%v unknown=%v", res.StaleFuncs, res.UnknownFuncs)
	}
	if !res.Optimized {
		t.Error("jumpstart did not publish optimized code")
	}
	if eng.Stats().OptimizedTranslations == 0 {
		t.Error("no optimized translations after jumpstart")
	}
	var out strings.Builder
	if _, err := eng.RunRequest(&out); err != nil {
		t.Fatal(err)
	}
	if want := "v=1560\n"; out.String() != want { // sum 0..39 of 2i
		t.Errorf("jumpstarted output %q, want %q", out.String(), want)
	}
}
