// Quickstart: compile a PHP-subset program and run it on the
// profile-guided region JIT, then print what the JIT did.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jit"
)

const src = `
function greet(string $who, int $times) {
  $msg = "";
  for ($i = 0; $i < $times; $i++) {
    $msg .= "hello, " . $who . "! ";
  }
  return $msg;
}
echo greet("world", 3), "\n";
`

func main() {
	unit, err := core.Compile(src, core.CompileOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := jit.DefaultConfig()
	cfg.ProfileTrigger = 20 // small program: optimize early
	eng, err := core.NewEngine(unit, cfg, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Run the "request" repeatedly: the first runs execute profiling
	// translations; the global trigger then publishes optimized
	// region code.
	var last uint64
	for i := 0; i < 20; i++ {
		c, err := eng.RunRequest(os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if i == 0 || i == 19 {
			fmt.Printf("  (request %d cost %d simulated cycles)\n", i+1, c)
		}
		last = c
	}
	st := eng.Stats()
	fmt.Printf("\nJIT summary: %d profiling translations, %d optimized regions, steady cost %d cycles\n",
		st.ProfilingTranslations, st.OptimizedTranslations, last)
}
