package jumpstart

import (
	"fmt"
	"sort"
	"strings"
)

// Fleet aggregation: snapshots from different VM instances (or from
// the same server at different times) are merged by stable function
// identity, never by raw TransID — each VM mints its own translation
// IDs, so only (name, hash, pc, entry shape, guards) identifies "the
// same" profiling translation across instances. Weights implement
// decay: merging yesterday's snapshot at weight 0.5 with today's at
// 1.0 keeps the profile fresh while smoothing over traffic spikes.

// transKey canonically identifies a translation within a function.
func transKey(tr *TransProfile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|%d", tr.PC, tr.EntryDepth)
	for _, t := range tr.EntryStackTypes {
		fmt.Fprintf(&sb, "|e%d,%d,%s,%v", t.Kind, t.ArrKind, t.Class, t.Exact)
	}
	for _, g := range tr.Guards {
		fmt.Fprintf(&sb, "|g%v,%d,%d,%d,%s,%v",
			g.Stack, g.Slot, g.Type.Kind, g.Type.ArrKind, g.Type.Class, g.Type.Exact)
	}
	return sb.String()
}

func scale(v uint64, w float64) uint64 {
	if w == 1 {
		return v
	}
	if w <= 0 {
		return 0
	}
	return uint64(float64(v)*w + 0.5)
}

// Canonicalize returns a copy of s with functions sorted by identity,
// translations by key, and arcs/targets/edges deduplicated and
// sorted. Structurally equal profiles canonicalize to deeply equal
// snapshots regardless of input order — this is what makes Merge
// commutative and Encode deterministic.
func Canonicalize(s *Snapshot) *Snapshot {
	return Merge([]*Snapshot{s}, nil)
}

// Scale returns a copy of s with every count multiplied by w (decay).
func Scale(s *Snapshot, w float64) *Snapshot {
	return Merge([]*Snapshot{s}, []float64{w})
}

// Merge combines snapshots by function identity. weights[i] scales
// snaps[i]'s counts (nil = all 1.0). Functions sharing an identity
// have their translations matched by (pc, entry shape, guards) and
// their counts summed; arcs, call-target histograms, and call-graph
// edges are summed the same way. The result is canonical.
func Merge(snaps []*Snapshot, weights []float64) *Snapshot {
	type funcAcc struct {
		id       identity
		trans    map[string]*TransProfile
		arcs     map[[2]string]uint64 // keyed by endpoint trans keys
		targets  map[string]uint64    // "pc|class"
		outEdges map[identity]uint64  // callee -> weight
	}
	accs := map[identity]*funcAcc{}
	get := func(id identity) *funcAcc {
		a := accs[id]
		if a == nil {
			a = &funcAcc{
				id:       id,
				trans:    map[string]*TransProfile{},
				arcs:     map[[2]string]uint64{},
				targets:  map[string]uint64{},
				outEdges: map[identity]uint64{},
			}
			accs[id] = a
		}
		return a
	}

	for si, s := range snaps {
		if s == nil {
			continue
		}
		w := 1.0
		if weights != nil && si < len(weights) {
			w = weights[si]
		}
		for fi := range s.Funcs {
			fp := &s.Funcs[fi]
			acc := get(identity{fp.Name, fp.Hash})
			keys := make([]string, len(fp.Trans))
			for ti := range fp.Trans {
				tr := &fp.Trans[ti]
				k := transKey(tr)
				keys[ti] = k
				dst := acc.trans[k]
				if dst == nil {
					cp := *tr
					cp.EntryStackTypes = append([]TypeRepr(nil), tr.EntryStackTypes...)
					cp.Guards = append([]GuardRepr(nil), tr.Guards...)
					cp.Count = 0
					acc.trans[k] = &cp
					dst = &cp
				}
				dst.Count += scale(tr.Count, w)
			}
			for _, a := range fp.Arcs {
				if a.From < 0 || a.From >= len(keys) || a.To < 0 || a.To >= len(keys) {
					continue
				}
				if n := scale(a.Weight, w); n > 0 {
					acc.arcs[[2]string{keys[a.From], keys[a.To]}] += n
				}
			}
			for _, ct := range fp.CallTargets {
				if n := scale(ct.Count, w); n > 0 {
					acc.targets[fmt.Sprintf("%d|%s", ct.PC, ct.Class)] += n
				}
			}
		}
		for _, ce := range s.CallGraph {
			if ce.Caller < 0 || ce.Caller >= len(s.Funcs) || ce.Callee < 0 || ce.Callee >= len(s.Funcs) {
				continue
			}
			caller := identity{s.Funcs[ce.Caller].Name, s.Funcs[ce.Caller].Hash}
			callee := identity{s.Funcs[ce.Callee].Name, s.Funcs[ce.Callee].Hash}
			if n := scale(ce.Weight, w); n > 0 {
				get(caller).outEdges[callee] += n
				get(callee) // ensure the callee exists in the output
			}
		}
	}

	// Emit in canonical order.
	ids := make([]identity, 0, len(accs))
	for id := range accs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].name != ids[j].name {
			return ids[i].name < ids[j].name
		}
		return ids[i].hash < ids[j].hash
	})
	funcIdx := make(map[identity]int, len(ids))
	for i, id := range ids {
		funcIdx[id] = i
	}

	out := &Snapshot{}
	for _, id := range ids {
		acc := accs[id]
		fp := FuncProfile{Name: id.name, Hash: id.hash}

		tks := make([]string, 0, len(acc.trans))
		for k := range acc.trans {
			tks = append(tks, k)
		}
		sort.Strings(tks)
		tidx := make(map[string]int, len(tks))
		for i, k := range tks {
			tidx[k] = i
			fp.Trans = append(fp.Trans, *acc.trans[k])
		}

		for ak, n := range acc.arcs {
			from, okf := tidx[ak[0]]
			to, okt := tidx[ak[1]]
			if okf && okt {
				fp.Arcs = append(fp.Arcs, ArcWeight{From: from, To: to, Weight: n})
			}
		}
		sort.Slice(fp.Arcs, func(i, j int) bool {
			if fp.Arcs[i].From != fp.Arcs[j].From {
				return fp.Arcs[i].From < fp.Arcs[j].From
			}
			return fp.Arcs[i].To < fp.Arcs[j].To
		})

		for tk, n := range acc.targets {
			var pc int
			var cls string
			if i := strings.IndexByte(tk, '|'); i >= 0 {
				fmt.Sscanf(tk[:i], "%d", &pc)
				cls = tk[i+1:]
			}
			fp.CallTargets = append(fp.CallTargets, CallTarget{PC: pc, Class: cls, Count: n})
		}
		sort.Slice(fp.CallTargets, func(i, j int) bool {
			if fp.CallTargets[i].PC != fp.CallTargets[j].PC {
				return fp.CallTargets[i].PC < fp.CallTargets[j].PC
			}
			return fp.CallTargets[i].Class < fp.CallTargets[j].Class
		})

		out.Funcs = append(out.Funcs, fp)
	}
	for _, id := range ids {
		for callee, n := range accs[id].outEdges {
			ci, ok := funcIdx[callee]
			if !ok {
				continue
			}
			out.CallGraph = append(out.CallGraph, CallEdge{
				Caller: funcIdx[id], Callee: ci, Weight: n,
			})
		}
	}
	sort.Slice(out.CallGraph, func(i, j int) bool {
		if out.CallGraph[i].Caller != out.CallGraph[j].Caller {
			return out.CallGraph[i].Caller < out.CallGraph[j].Caller
		}
		return out.CallGraph[i].Callee < out.CallGraph[j].Callee
	})
	return out
}
