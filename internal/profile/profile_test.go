package profile_test

import (
	"testing"

	"repro/internal/profile"
)

func TestCountersAndArcs(t *testing.T) {
	c := profile.NewCounters()
	a := c.NewCounter()
	b := c.NewCounter()
	for i := 0; i < 5; i++ {
		c.Inc(a)
	}
	c.Inc(b)
	if c.Count(a) != 5 || c.Count(b) != 1 {
		t.Errorf("counts: %d %d", c.Count(a), c.Count(b))
	}
	c.RecordArc(a, b)
	c.RecordArc(a, b)
	if c.ArcCount(a, b) != 2 {
		t.Errorf("arc count = %d", c.ArcCount(a, b))
	}
	arcs := c.Arcs(map[profile.TransID]bool{a: true})
	if len(arcs) != 1 {
		t.Errorf("arcs = %v", arcs)
	}
}

func TestCallTargetHistogram(t *testing.T) {
	c := profile.NewCounters()
	site := profile.CallSite{FuncID: 3, PC: 17}
	for i := 0; i < 9; i++ {
		c.RecordCallTarget(site, "Hot")
	}
	c.RecordCallTarget(site, "Cold")
	tp := c.CallTargets(site)
	if tp == nil || tp.Total != 10 {
		t.Fatalf("profile = %+v", tp)
	}
	if tp.Classes[0].Class != "Hot" || tp.Classes[0].Count != 9 {
		t.Errorf("dominant class wrong: %+v", tp.Classes)
	}
	if c.CallTargets(profile.CallSite{FuncID: 9, PC: 9}) != nil {
		t.Error("unknown site should have nil profile")
	}
}

func TestCallGraph(t *testing.T) {
	c := profile.NewCounters()
	c.RecordCall(1, 2)
	c.RecordCall(1, 2)
	c.RecordCall(2, 3)
	g := c.CallGraph()
	if g[profile.CallArc{Caller: 1, Callee: 2}] != 2 {
		t.Errorf("call graph: %v", g)
	}
	if len(g) != 2 {
		t.Errorf("graph size = %d", len(g))
	}
}
