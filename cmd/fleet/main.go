// Command fleet runs the fleet-scale serving simulation: N hosts
// behind a load-balancer model, diurnal Zipfian traffic from a
// simulated user population, a central profile-aggregation service,
// rolling restarts, and overload shedding. See DESIGN.md §12.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/fleet"
)

func main() {
	cfg := fleet.DefaultConfig()
	flag.IntVar(&cfg.Hosts, "hosts", cfg.Hosts, "fleet size")
	flag.IntVar(&cfg.Minutes, "minutes", cfg.Minutes, "simulated horizon in minutes")
	cycles := flag.Uint64("cycles", cfg.CyclesPerMinute, "full-capacity host cycle budget per simulated minute")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "traffic seed (equal seeds give bit-identical runs)")
	flag.Float64Var(&cfg.Utilization, "util", cfg.Utilization, "steady demand as fraction of fleet capacity")
	flag.IntVar(&cfg.Users, "users", cfg.Users, "simulated user population size")
	flag.Float64Var(&cfg.UserZipfS, "user-zipf", cfg.UserZipfS, "Zipf s for user activity")
	flag.Float64Var(&cfg.EndpointZipfS, "ep-zipf", cfg.EndpointZipfS, "Zipf s for endpoint popularity")
	flag.Float64Var(&cfg.DiurnalAmp, "diurnal-amp", cfg.DiurnalAmp, "diurnal sinusoid amplitude (0 = flat)")
	flag.IntVar(&cfg.DiurnalPeriod, "diurnal-period", cfg.DiurnalPeriod, "diurnal period in minutes")
	flag.Float64Var(&cfg.UniformFraction, "uniform-frac", cfg.UniformFraction, "traffic fraction sprayed uniformly instead of least-loaded")
	flag.Float64Var(&cfg.CapacitySpread, "cap-spread", cfg.CapacitySpread, "per-host capacity stagger (hardware generations)")
	flag.IntVar(&cfg.PublishEvery, "publish-every", cfg.PublishEvery, "minutes between profile publish+merge rounds (0 = aggregator off)")
	flag.Float64Var(&cfg.AggDecay, "agg-decay", cfg.AggDecay, "aggregator decay weight for the previous aggregate")
	flag.IntVar(&cfg.RestartAt, "restart-at", cfg.RestartAt, "minute the rolling restart starts (0 = no deploy)")
	flag.IntVar(&cfg.RestartStagger, "restart-stagger", cfg.RestartStagger, "minutes between successive host restarts")
	flag.IntVar(&cfg.RestartDown, "restart-down", cfg.RestartDown, "minutes each host is out of rotation")
	flag.IntVar(&cfg.RestartCount, "restart-count", cfg.RestartCount, "hosts to restart (0 = whole fleet)")
	flag.BoolVar(&cfg.WarmRestart, "warm", cfg.WarmRestart, "restarting hosts pull the aggregator's warm aggregate")
	flag.Float64Var(&cfg.OverloadFactor, "overload", cfg.OverloadFactor, "demand multiplier during the overload window")
	flag.IntVar(&cfg.OverloadAt, "overload-at", cfg.OverloadAt, "minute the overload window opens")
	flag.IntVar(&cfg.OverloadMinutes, "overload-minutes", cfg.OverloadMinutes, "overload window length (0 = no overload)")
	flag.BoolVar(&cfg.DisableShed, "no-shed", cfg.DisableShed, "disable overload shedding (hosts can die)")
	flag.Float64Var(&cfg.ShedRatio, "shed-ratio", cfg.ShedRatio, "assigned/capacity ratio that triggers shedding")
	flag.Float64Var(&cfg.DeathBacklog, "death-backlog", cfg.DeathBacklog, "backlog/capacity ratio that kills an unprotected host")
	flag.IntVar(&cfg.CompileWorkers, "compile-workers", cfg.CompileWorkers, "per-host JIT backend compile goroutines (0/1 = serial)")
	flag.Float64Var(&cfg.VerifySample, "verify-sample", cfg.VerifySample, "per-host fraction of requests re-executed on a shadow interpreter and cross-checked (0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file after the simulation")
	flag.Parse()
	cfg.CyclesPerMinute = *cycles

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fleet: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	res, err := fleet.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(1)
	}
	fleet.Report(os.Stdout, res)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleet: memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fleet: memprofile:", err)
			os.Exit(1)
		}
	}
}
